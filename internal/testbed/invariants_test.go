package testbed

import (
	"strings"
	"testing"

	"prism/internal/fault"
	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/sim"
)

// buildClusterRig assembles n independent hosts via BuildHost — the same
// entry point the cluster topology uses — each on its own engine, drives a
// distinct number of frames through each, and drains them. The returned
// wire count is the fabric's would-be delivery total.
func buildClusterRig(t *testing.T, n int, withFault bool) ([]*overlay.Host, []*fault.Plane, uint64) {
	t.Helper()
	spec := Spec{Mode: prio.ModeVanilla}
	hosts := make([]*overlay.Host, n)
	planes := make([]*fault.Plane, n)
	var wire uint64
	for i := 0; i < n; i++ {
		eng := sim.NewEngine(uint64(100 + i))
		hspec := spec
		hspec.Seed = uint64(100 + i)
		if withFault && i%2 == 1 {
			// Corruption only: corrupted frames still traverse the full
			// pipeline (dropped with an attributed verdict), so the drained
			// ledgers stay strict without a rescue pass.
			hspec.Fault = &fault.Config{Seed: uint64(7 + i), Rate: 0.5, Classes: fault.ClassCorrupt}
		}
		h, _, plane := hspec.BuildHost(eng, "h")
		if withFault && i%2 == 1 {
			plane.Start(0)
		}
		frames := 3 + 2*i // distinct per host, so aggregation bugs can't cancel
		for f := 0; f < frames; f++ {
			frame := overlay.HostUDPToServer(4000, 5000, []byte{byte(f)})
			at := sim.Time(1000 * (f + 1))
			eng.At(at, func() { h.InjectFromWire(at, frame) })
		}
		if err := eng.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if eng.Pending() != 0 {
			t.Fatalf("host %d did not drain: %d pending events", i, eng.Pending())
		}
		hosts[i], planes[i] = h, plane
		wire += h.RxWire
	}
	return hosts, planes, wire
}

// TestCheckClusterAggregatesHosts runs the aggregated checker over several
// independently-built rigs: per-host conservation must hold host by host,
// the wire sum must meet the fabric's delivery count, and the fabric
// equation must close — including a non-strict snapshot with frames still
// riding the fabric.
func TestCheckClusterAggregatesHosts(t *testing.T) {
	hosts, planes, wire := buildClusterRig(t, 3, false)

	// Settled: everything that entered the fabric reached a host, a
	// client, or an attributed drop.
	settled := ClusterTerms{Injected: wire + 9 + 4, ToHosts: wire, ToClients: 9, Dropped: 4}
	if err := CheckCluster(hosts, planes, settled, true); err != nil {
		t.Fatalf("settled cluster flagged: %v", err)
	}

	// Mid-run: two frames still on the fabric balance only through the
	// in-flight term, and only non-strictly.
	midRun := settled
	midRun.Injected += 2
	midRun.InFlight = 2
	if err := CheckCluster(hosts, planes, midRun, false); err != nil {
		t.Fatalf("mid-run snapshot flagged: %v", err)
	}
	if err := CheckCluster(hosts, planes, midRun, true); err == nil {
		t.Error("strict check accepted a fabric still holding frames")
	} else if !strings.Contains(err.Error(), "still holds") {
		t.Errorf("strict in-flight error unclear: %v", err)
	}
}

// TestCheckClusterDetectsBrokenTerms fabricates each way the fabric
// equation can break and demands a distinct, attributable error.
func TestCheckClusterDetectsBrokenTerms(t *testing.T) {
	hosts, planes, wire := buildClusterRig(t, 2, false)
	good := ClusterTerms{Injected: wire + 5, ToHosts: wire, ToClients: 5}
	if err := CheckCluster(hosts, planes, good, true); err != nil {
		t.Fatalf("baseline flagged: %v", err)
	}

	handoff := good
	handoff.ToHosts--
	handoff.Injected--
	if err := CheckCluster(hosts, planes, handoff, true); err == nil {
		t.Error("fabric/host handoff mismatch not detected")
	} else if !strings.Contains(err.Error(), "handoff") {
		t.Errorf("handoff error unclear: %v", err)
	}

	leak := good
	leak.Injected += 3 // three frames entered and vanished
	if err := CheckCluster(hosts, planes, leak, true); err == nil {
		t.Error("fabric conservation leak not detected")
	} else if !strings.Contains(err.Error(), "conservation") {
		t.Errorf("conservation error unclear: %v", err)
	}

	negative := good
	negative.InFlight = -1
	negative.Injected-- // keep the sum consistent so only the sign trips
	if err := CheckCluster(hosts, planes, negative, false); err == nil {
		t.Error("negative in-flight count not detected")
	}
}

// TestCheckClusterSurfacesHostIdentity breaks one host's own ledger and
// requires the aggregated checker to name it — cluster-wide totals must
// not wash out a single bad rig.
func TestCheckClusterSurfacesHostIdentity(t *testing.T) {
	hosts, planes, wire := buildClusterRig(t, 3, false)
	hosts[1].RxWire++ // phantom arrival on the middle host
	terms := ClusterTerms{Injected: wire + 1, ToHosts: wire + 1}
	err := CheckCluster(hosts, planes, terms, true)
	if err == nil {
		t.Fatal("broken host ledger not detected")
	}
	if !strings.Contains(err.Error(), "host1") {
		t.Errorf("error does not name the offending host: %v", err)
	}
	hosts[1].RxWire--
	terms.Injected--
	terms.ToHosts--
	if err := CheckCluster(hosts, planes, terms, true); err != nil {
		t.Errorf("balance not restored: %v", err)
	}
}

// TestCheckClusterWithFaultPlanes pairs fault planes with only some hosts
// (index-aligned, nil for the rest) and checks the aggregate still
// balances: injected corruption shows up as attributed drops inside the
// per-host ledgers, never as a fabric-level discrepancy.
func TestCheckClusterWithFaultPlanes(t *testing.T) {
	hosts, planes, wire := buildClusterRig(t, 4, true)
	injected := false
	for _, p := range planes {
		if p != nil && p.Stats().Corrupted > 0 {
			injected = true
		}
	}
	if !injected {
		t.Fatal("fault planes injected nothing; raise the rate or frame count")
	}
	terms := ClusterTerms{Injected: wire, ToHosts: wire}
	if err := CheckCluster(hosts, planes, terms, true); err != nil {
		t.Fatalf("faulted cluster flagged: %v", err)
	}
}

// TestBuildHostWiring covers the BuildHost entry point itself: the caller's
// pipeline must be honored, a default one built when absent, and a Fault
// spec must come back as a live plane threaded into the host.
func TestBuildHostWiring(t *testing.T) {
	eng := sim.NewEngine(1)
	spec := Spec{Seed: 1, Mode: prio.ModeVanilla}
	_, pipe, plane := spec.BuildHost(eng, "solo")
	if pipe == nil {
		t.Error("BuildHost without a Spec.Pipe must build its own pipeline")
	}
	if plane != nil {
		t.Error("BuildHost grew a fault plane without a Fault spec")
	}

	spec.Fault = &fault.Config{Seed: 2, Rate: 0.1}
	_, _, plane = spec.BuildHost(sim.NewEngine(2), "faulted")
	if plane == nil {
		t.Error("BuildHost ignored the Fault spec")
	}
}
