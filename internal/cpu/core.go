// Package cpu models processor cores as serially-occupied resources with a
// busy/idle ledger, utilization accounting, and a C-state (power saving)
// model.
//
// The C-state model exists because of Fig. 11 of the paper: at low load the
// processing core sleeps between packets, and every interrupt then pays a
// wakeup penalty — which is why measured latency *decreases* as background
// load rises toward 80–90% utilization. The experiments pin C-states to
// C1 as the paper's testbed does, but deeper states are available for
// ablations.
package cpu

import (
	"fmt"

	"prism/internal/sim"
)

// CState describes one idle state.
type CState struct {
	Name string
	// Residency is the minimum uninterrupted idle time after which the
	// core is assumed to have entered this state.
	Residency sim.Time
	// ExitLatency is charged to the next piece of work that interrupts
	// this state.
	ExitLatency sim.Time
}

// C1 approximates the shallow halt state the paper's testbed was pinned to
// ("maximum processor C-state was set to 1"). Even C1 has a measurable
// exit cost once DVFS ramp-up is included, which is what produces the
// low-load latency hump of Fig. 11.
var C1 = []CState{
	{Name: "C1", Residency: 20 * sim.Microsecond, ExitLatency: 12 * sim.Microsecond},
}

// DeepStates adds C6-like behaviour for ablation experiments.
var DeepStates = []CState{
	{Name: "C1", Residency: 20 * sim.Microsecond, ExitLatency: 18 * sim.Microsecond},
	{Name: "C6", Residency: 600 * sim.Microsecond, ExitLatency: 85 * sim.Microsecond},
}

// Core is a single hardware thread. All model code runs on the simulation's
// single logical thread, so Core needs no locking; it is an accounting
// object, not a scheduler.
type Core struct {
	ID int

	cstates []CState // sorted by Residency ascending

	busyUntil sim.Time
	busyTotal sim.Time
	windowAt  sim.Time // start of the current utilization window
	windowUse sim.Time // busy time accumulated inside the window

	// Wakeups counts C-state exits, per state index.
	Wakeups []uint64
}

// NewCore returns a core with the given C-state table (may be nil for an
// always-on core).
func NewCore(id int, cstates []CState) *Core {
	return &Core{ID: id, cstates: cstates, Wakeups: make([]uint64, len(cstates))}
}

// BusyUntil returns the end of the last scheduled work.
func (c *Core) BusyUntil() sim.Time { return c.busyUntil }

// IdleAt reports whether the core has no scheduled work at time t.
func (c *Core) IdleAt(t sim.Time) bool { return t >= c.busyUntil }

// NextStart returns the earliest time work arriving at now could begin
// executing: after current work drains, plus any C-state exit penalty. It
// does not reserve anything.
func (c *Core) NextStart(now sim.Time) sim.Time {
	if now < c.busyUntil {
		return c.busyUntil
	}
	return now + c.exitPenaltyPeek(now)
}

func (c *Core) exitPenaltyPeek(t sim.Time) sim.Time {
	if t <= c.busyUntil {
		return 0
	}
	idle := t - c.busyUntil
	var penalty sim.Time
	for _, s := range c.cstates {
		if idle >= s.Residency {
			penalty = s.ExitLatency
		}
	}
	return penalty
}

// Acquire reserves the core for work arriving at now: it computes the start
// time (including C-state exit, which is itself charged as busy time),
// marks the core busy through start, and returns it. Call Consume to charge
// the work's own cost.
func (c *Core) Acquire(now sim.Time) sim.Time {
	if now < c.busyUntil {
		return c.busyUntil
	}
	idle := now - c.busyUntil
	var penalty sim.Time
	state := -1
	for i, s := range c.cstates {
		if idle >= s.Residency {
			penalty = s.ExitLatency
			state = i
		}
	}
	if state >= 0 {
		c.Wakeups[state]++
	}
	start := now + penalty
	// The exit latency itself occupies the core.
	c.charge(penalty)
	c.busyUntil = start
	return start
}

// Consume charges d of execution starting no earlier than start, which must
// not precede the core's current busyUntil (work cannot time-travel). It
// returns the completion time.
func (c *Core) Consume(start, d sim.Time) sim.Time {
	if d < 0 {
		panic(fmt.Sprintf("cpu: negative work %v", d))
	}
	if start < c.busyUntil {
		panic(fmt.Sprintf("cpu: core %d double-booked: start %v < busyUntil %v", c.ID, start, c.busyUntil))
	}
	c.charge(d)
	c.busyUntil = start + d
	return c.busyUntil
}

func (c *Core) charge(d sim.Time) {
	c.busyTotal += d
	c.windowUse += d
}

// BusyTotal returns total busy time since construction.
func (c *Core) BusyTotal() sim.Time { return c.busyTotal }

// ResetWindow starts a fresh utilization window at now.
func (c *Core) ResetWindow(now sim.Time) {
	c.windowAt = now
	c.windowUse = 0
}

// Utilization returns the busy fraction of the current window, in [0,1].
// Work scheduled beyond now is not counted (it has not happened yet), so a
// saturated core reports ~1.0 rather than >1.
func (c *Core) Utilization(now sim.Time) float64 {
	w := now - c.windowAt
	if w <= 0 {
		return 0
	}
	use := c.windowUse
	if c.busyUntil > now {
		// Subtract the part of the charged work that lies in the future.
		future := c.busyUntil - now
		if future > use {
			use = 0
		} else {
			use -= future
		}
	}
	u := float64(use) / float64(w)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
