package cpu

import (
	"testing"
	"testing/quick"

	"prism/internal/sim"
)

func TestCoreBasicAccounting(t *testing.T) {
	c := NewCore(0, nil)
	if !c.IdleAt(0) {
		t.Error("new core not idle")
	}
	start := c.Acquire(100)
	if start != 100 {
		t.Errorf("Acquire = %v, want 100 (no C-states)", start)
	}
	end := c.Consume(start, 50)
	if end != 150 {
		t.Errorf("Consume end = %v, want 150", end)
	}
	if c.BusyUntil() != 150 {
		t.Errorf("BusyUntil = %v", c.BusyUntil())
	}
	if c.BusyTotal() != 50 {
		t.Errorf("BusyTotal = %v", c.BusyTotal())
	}
	if c.IdleAt(120) {
		t.Error("core idle while busy")
	}
	if !c.IdleAt(150) {
		t.Error("core busy after work drained")
	}
}

func TestCoreQueuesWork(t *testing.T) {
	c := NewCore(0, nil)
	c.Consume(c.Acquire(0), 100)
	// Work arriving at t=10 while busy until 100 starts at 100.
	start := c.Acquire(10)
	if start != 100 {
		t.Errorf("Acquire while busy = %v, want 100", start)
	}
}

func TestCoreCStateExit(t *testing.T) {
	c := NewCore(0, C1)
	c.Consume(c.Acquire(0), 10)
	// Arrive shortly after going idle: no penalty.
	start := c.Acquire(15)
	if start != 15 {
		t.Errorf("short-idle Acquire = %v, want 15", start)
	}
	c.Consume(start, 5)
	// Arrive long after going idle: pay C1 exit latency.
	arrive := sim.Time(20 + 100*sim.Microsecond)
	start = c.Acquire(arrive)
	want := arrive + C1[0].ExitLatency
	if start != want {
		t.Errorf("long-idle Acquire = %v, want %v", start, want)
	}
	if c.Wakeups[0] != 1 {
		t.Errorf("Wakeups = %v, want [1]", c.Wakeups)
	}
}

func TestCoreDeepStates(t *testing.T) {
	c := NewCore(0, DeepStates)
	// After 1ms idle the deepest qualifying state wins.
	start := c.Acquire(sim.Millisecond)
	want := sim.Millisecond + DeepStates[1].ExitLatency
	if start != want {
		t.Errorf("deep-idle Acquire = %v, want %v", start, want)
	}
	if c.Wakeups[1] != 1 {
		t.Errorf("Wakeups = %v", c.Wakeups)
	}
}

func TestCoreNextStartDoesNotReserve(t *testing.T) {
	c := NewCore(0, C1)
	got := c.NextStart(sim.Millisecond)
	want := sim.Millisecond + C1[0].ExitLatency
	if got != want {
		t.Errorf("NextStart = %v, want %v", got, want)
	}
	if c.Wakeups[0] != 0 {
		t.Error("NextStart counted a wakeup")
	}
	if c.BusyUntil() != 0 {
		t.Error("NextStart reserved the core")
	}
	// While busy, NextStart returns busyUntil.
	c.Consume(c.Acquire(sim.Millisecond), 100)
	if got := c.NextStart(sim.Millisecond); got != c.BusyUntil() {
		t.Errorf("NextStart while busy = %v", got)
	}
}

func TestCoreConsumePanics(t *testing.T) {
	t.Run("double booking", func(t *testing.T) {
		c := NewCore(0, nil)
		c.Consume(c.Acquire(0), 100)
		defer func() {
			if recover() == nil {
				t.Error("double booking did not panic")
			}
		}()
		c.Consume(50, 10)
	})
	t.Run("negative work", func(t *testing.T) {
		c := NewCore(0, nil)
		defer func() {
			if recover() == nil {
				t.Error("negative work did not panic")
			}
		}()
		c.Consume(0, -1)
	})
}

func TestCoreUtilization(t *testing.T) {
	c := NewCore(0, nil)
	c.ResetWindow(0)
	// 600µs busy in a 1ms window.
	var at sim.Time
	for i := 0; i < 6; i++ {
		start := c.Acquire(at)
		c.Consume(start, 100*sim.Microsecond)
		at += 170 * sim.Microsecond
	}
	u := c.Utilization(sim.Millisecond)
	if u < 0.55 || u > 0.65 {
		t.Errorf("Utilization = %v, want ~0.6", u)
	}
}

func TestCoreUtilizationSaturated(t *testing.T) {
	c := NewCore(0, nil)
	c.ResetWindow(0)
	c.Consume(c.Acquire(0), 10*sim.Millisecond) // scheduled way past the window
	u := c.Utilization(sim.Millisecond)
	if u != 1 {
		t.Errorf("saturated Utilization = %v, want 1", u)
	}
}

func TestCoreUtilizationEmptyWindow(t *testing.T) {
	c := NewCore(0, nil)
	c.ResetWindow(100)
	if u := c.Utilization(100); u != 0 {
		t.Errorf("zero-width window utilization = %v", u)
	}
	if u := c.Utilization(200); u != 0 {
		t.Errorf("idle window utilization = %v", u)
	}
}

// Property: busy ledger never exceeds elapsed time and utilization stays
// in [0,1] for any arrival/cost pattern.
func TestCoreLedgerProperty(t *testing.T) {
	prop := func(steps []struct {
		Gap  uint16
		Cost uint16
	}) bool {
		c := NewCore(0, C1)
		c.ResetWindow(0)
		var now sim.Time
		for _, s := range steps {
			now += sim.Time(s.Gap)
			start := c.Acquire(now)
			end := c.Consume(start, sim.Time(s.Cost))
			if end < now {
				return false
			}
			if now < end {
				now = end
			}
		}
		if now > 0 && c.BusyTotal() > now {
			return false
		}
		u := c.Utilization(now + 1)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
