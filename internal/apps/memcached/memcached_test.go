package memcached

import (
	"testing"

	"prism/internal/cpu"
	"prism/internal/nic"
	"prism/internal/overlay"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/traffic"
)

func newRig(t *testing.T, mode prio.Mode) (*sim.Engine, *overlay.Host, *traffic.Client, *overlay.Container, *Server) {
	t.Helper()
	eng := sim.NewEngine(5)
	host := overlay.NewHost(eng, overlay.Config{
		Mode: mode, CStates: cpu.C1, AppCStates: cpu.C1,
		NIC: nic.Config{RxUsecs: 8 * sim.Microsecond, RxFrames: 32, AdaptiveIdle: 100 * sim.Microsecond},
	})
	client := traffic.NewClient(host)
	ctr := host.AddContainer("memcached")
	srv, err := InstallServer(ctr, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, host, client, ctr, srv
}

func TestClosedLoopGetSet(t *testing.T) {
	eng, host, client, ctr, srv := newRig(t, prio.ModeVanilla)
	cfg := DefaultMemaslapConfig()
	cfg.Concurrency = 4
	cfg.GetRatio = 0.5
	ms := NewMemaslap(eng, host, ctr, overlay.ClientContainer(0, 40000), cfg)
	ms.Start(client, 0)
	if err := eng.Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ms.Ops < 100 {
		t.Fatalf("completed only %d ops", ms.Ops)
	}
	if srv.Gets == 0 || srv.Sets == 0 {
		t.Errorf("gets/sets = %d/%d, want both exercised", srv.Gets, srv.Sets)
	}
	if ms.Timeouts != 0 {
		t.Errorf("timeouts = %d on an idle server", ms.Timeouts)
	}
	if ms.Hist.Count() == 0 {
		t.Fatal("no latency samples")
	}
	// Closed loop identity: throughput ~= concurrency / mean RTT.
	tput := ms.ThroughputOps()
	mean := ms.Hist.Mean().Seconds()
	expected := float64(cfg.Concurrency) / mean
	if tput < expected*0.7 || tput > expected*1.3 {
		t.Errorf("throughput %.0f ops/s vs closed-loop expectation %.0f", tput, expected)
	}
}

func TestServerStoreSemantics(t *testing.T) {
	eng, host, client, ctr, srv := newRig(t, prio.ModeVanilla)
	// With GetRatio 0 every op is a SET; misses stay zero.
	cfg := DefaultMemaslapConfig()
	cfg.Concurrency = 2
	cfg.GetRatio = 0
	ms := NewMemaslap(eng, host, ctr, overlay.ClientContainer(0, 40000), cfg)
	ms.Start(client, 0)
	if err := eng.Run(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if srv.Sets == 0 || srv.Gets != 0 {
		t.Errorf("sets/gets = %d/%d", srv.Sets, srv.Gets)
	}
	if len(srv.store) == 0 {
		t.Error("nothing stored")
	}
	for k, v := range srv.store {
		if len(v) != cfg.ValueSize {
			t.Errorf("stored %q has %d bytes, want %d", k, len(v), cfg.ValueSize)
		}
	}
}

func TestMissesCountedBeforeSets(t *testing.T) {
	eng, host, client, ctr, srv := newRig(t, prio.ModeVanilla)
	cfg := DefaultMemaslapConfig()
	cfg.Concurrency = 1
	cfg.GetRatio = 1 // never sets: every get misses
	ms := NewMemaslap(eng, host, ctr, overlay.ClientContainer(0, 40000), cfg)
	ms.Start(client, 0)
	if err := eng.Run(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if srv.Misses != srv.Gets || srv.Misses == 0 {
		t.Errorf("misses = %d of %d gets", srv.Misses, srv.Gets)
	}
	// Misses still complete the closed loop.
	if ms.Ops == 0 {
		t.Error("no ops completed")
	}
}

func TestTimeoutRecoversLostRequests(t *testing.T) {
	eng, host, client, ctr, _ := newRig(t, prio.ModeVanilla)
	cfg := DefaultMemaslapConfig()
	cfg.Concurrency = 1
	cfg.Timeout = 5 * sim.Millisecond
	ms := NewMemaslap(eng, host, ctr, overlay.ClientContainer(0, 40000), cfg)
	ms.Start(client, 0)
	// Saturate the NIC ring with junk so some requests drop.
	fl := traffic.NewUDPFlood(eng, host, host.AddContainer("bg"), overlay.ClientContainer(1, 41000), 5001, 800_000)
	if err := fl.InstallSink(500); err != nil {
		t.Fatal(err)
	}
	fl.Start(0)
	if err := eng.Run(300 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The connection must never wedge: ops keep completing even with
	// losses (via timeouts).
	if ms.Ops+ms.Timeouts < 20 {
		t.Errorf("closed loop wedged: ops=%d timeouts=%d", ms.Ops, ms.Timeouts)
	}
}

func TestBusyThroughputCollapse(t *testing.T) {
	run := func(busy bool) float64 {
		eng, host, client, ctr, _ := newRig(t, prio.ModeVanilla)
		ms := NewMemaslap(eng, host, ctr, overlay.ClientContainer(0, 40000), DefaultMemaslapConfig())
		ms.Start(client, 0)
		if busy {
			fl := traffic.NewUDPFlood(eng, host, host.AddContainer("bg"), overlay.ClientContainer(1, 41000), 5001, 300_000)
			fl.Burst = 96
			fl.Poisson = false
			if err := fl.InstallSink(600); err != nil {
				t.Fatal(err)
			}
			fl.Start(0)
		}
		if err := eng.Run(300 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return ms.ThroughputOps()
	}
	idle, busy := run(false), run(true)
	if busy > idle*0.6 {
		t.Errorf("busy tput %.0f vs idle %.0f: expected a collapse (paper -80%%)", busy, idle)
	}
}

func TestClientMACDerivation(t *testing.T) {
	ip := pkt.Addr(172, 17, 100, 2)
	want := overlay.ClientContainer(0, 1).MAC
	if got := clientMACFor(ip); got != want {
		t.Errorf("clientMACFor(%v) = %v, want %v", ip, got, want)
	}
}
