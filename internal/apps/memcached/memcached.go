// Package memcached models the Fig. 12 application benchmark: a memcached
// server container driven by a memaslap-style closed-loop client over the
// overlay network.
//
// The protocol is a compact binary stand-in for the memcached UDP
// protocol: requests carry a latency probe, an opcode, and a key (plus a
// value for SET); responses echo the probe and carry the value for GET.
// What matters to the experiment is not protocol detail but the
// closed-loop dynamics: throughput = outstanding / RTT, so when background
// traffic inflates RTT 5x, throughput collapses — exactly Fig. 12.
package memcached

import (
	"fmt"

	"prism/internal/overlay"
	"prism/internal/pkt"
	"prism/internal/sim"
	"prism/internal/socket"
	"prism/internal/stats"
)

// Ops.
const (
	OpGet byte = 1
	OpSet byte = 2
)

// Port is the memcached service port.
const Port = 11211

// ServerConfig sets the per-op application costs (measured memcached-like
// values on the paper's CPU).
type ServerConfig struct {
	GetCost sim.Time
	SetCost sim.Time
}

// DefaultServerConfig returns typical small-object costs.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		GetCost: 2 * sim.Microsecond,
		SetCost: 2500 * sim.Nanosecond,
	}
}

// Server is the memcached container app.
type Server struct {
	cfg ServerConfig
	ctr *overlay.Container

	store map[string][]byte

	Gets, Sets, Misses uint64
}

// InstallServer binds the server on the container. Replies return to the
// client endpoint carried in each request's flow.
func InstallServer(ctr *overlay.Container, cfg ServerConfig) (*Server, error) {
	s := &Server{cfg: cfg, ctr: ctr, store: make(map[string][]byte)}
	app := socket.AppFunc{
		Cost: s.cost,
		Fn:   s.onRequest,
	}
	if _, err := ctr.Bind(pkt.ProtoUDP, Port, app, 4096); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) cost(m socket.Message) sim.Time {
	if len(m.Payload) > pkt.ProbeLen && m.Payload[pkt.ProbeLen] == OpSet {
		return s.cfg.SetCost
	}
	return s.cfg.GetCost
}

func (s *Server) onRequest(done sim.Time, m socket.Message) {
	p := m.Payload
	if len(p) < pkt.ProbeLen+2 {
		return
	}
	op := p[pkt.ProbeLen]
	keyLen := int(p[pkt.ProbeLen+1])
	if len(p) < pkt.ProbeLen+2+keyLen {
		return
	}
	key := string(p[pkt.ProbeLen+2 : pkt.ProbeLen+2+keyLen])
	reply := make([]byte, pkt.ProbeLen, pkt.ProbeLen+256)
	copy(reply, p[:pkt.ProbeLen]) // echo the probe
	switch op {
	case OpSet:
		s.Sets++
		value := p[pkt.ProbeLen+2+keyLen:]
		stored := make([]byte, len(value))
		copy(stored, value)
		s.store[key] = stored
		reply = append(reply, 'S')
	case OpGet:
		s.Gets++
		v, ok := s.store[key]
		if !ok {
			s.Misses++
			reply = append(reply, 'M')
		} else {
			reply = append(reply, 'V')
			reply = append(reply, v...)
		}
	default:
		return
	}
	dst := overlay.RemoteEndpoint{
		// Reply to whoever asked: reconstruct the client endpoint from the
		// request flow (MACs are deterministic in this fabric).
		IP:   m.From.SrcIP,
		Port: m.From.SrcPort,
		MAC:  clientMACFor(m.From.SrcIP),
	}
	s.ctr.SendUDP(done, dst, Port, reply)
}

// clientMACFor reproduces overlay.ClientContainer's deterministic MAC for
// a client container IP.
func clientMACFor(ip pkt.IPv4) pkt.MAC {
	return pkt.MAC{0x02, 0x42, ip[0], ip[1], ip[2], ip[3]}
}

// MemaslapConfig parameterizes the closed-loop client.
type MemaslapConfig struct {
	// Concurrency is the number of outstanding requests (memaslap
	// connections x pipeline depth).
	Concurrency int
	// GetRatio is the fraction of GETs (memaslap default 0.9).
	GetRatio float64
	// KeyCount, ValueSize shape the workload.
	KeyCount  int
	ValueSize int
	// Timeout resends after a lost reply (socket overflow under load).
	Timeout sim.Time
	// ClientTx/ClientRx are the unloaded client-machine constants.
	ClientTx sim.Time
	ClientRx sim.Time
	// Warmup discards samples sent before it.
	Warmup sim.Time
}

// DefaultMemaslapConfig mirrors a typical memaslap invocation.
func DefaultMemaslapConfig() MemaslapConfig {
	return MemaslapConfig{
		Concurrency: 16,
		GetRatio:    0.9,
		KeyCount:    1000,
		ValueSize:   512,
		Timeout:     50 * sim.Millisecond,
		ClientTx:    8 * sim.Microsecond,
		ClientRx:    22 * sim.Microsecond,
	}
}

// Memaslap is the closed-loop load generator.
type Memaslap struct {
	cfg MemaslapConfig

	eng  *sim.Engine
	host *overlay.Host
	ctr  *overlay.Container
	src  overlay.RemoteEndpoint

	// Hist records full round-trip latency per completed op, as memaslap
	// reports.
	Hist *stats.Histogram
	// Ops counts completed operations inside the measurement window;
	// Timeouts counts presumed-lost requests.
	Ops      uint64
	Timeouts uint64

	seq      uint64
	timeouts []*sim.Event
	expect   []uint64 // per-connection outstanding sequence number
	measured struct {
		from sim.Time
		to   sim.Time
	}
}

// NewMemaslap builds the client against a server container.
func NewMemaslap(eng *sim.Engine, host *overlay.Host, ctr *overlay.Container,
	src overlay.RemoteEndpoint, cfg MemaslapConfig) *Memaslap {
	return &Memaslap{
		cfg: cfg, eng: eng, host: host, ctr: ctr, src: src,
		Hist:     stats.NewHistogram(),
		timeouts: make([]*sim.Event, cfg.Concurrency),
		expect:   make([]uint64, cfg.Concurrency),
	}
}

// Start registers the reply handler and launches all connections.
func (ms *Memaslap) Start(client interface {
	Register(port uint16, fn func(sim.Time, []byte, pkt.FlowKey))
}, at sim.Time) {
	client.Register(ms.src.Port, ms.onReply)
	ms.measured.from = ms.cfg.Warmup
	ms.eng.At(at, func() {
		for conn := 0; conn < ms.cfg.Concurrency; conn++ {
			ms.sendNext(conn)
		}
	})
}

// ThroughputOps returns completed ops/sec over the measured window.
func (ms *Memaslap) ThroughputOps() float64 {
	window := ms.measured.to - ms.measured.from
	if window <= 0 {
		return 0
	}
	return float64(ms.Ops) / window.Seconds()
}

func (ms *Memaslap) key(n uint64) string {
	return fmt.Sprintf("key-%06d", n%uint64(ms.cfg.KeyCount))
}

func (ms *Memaslap) sendNext(conn int) {
	now := ms.eng.Now()
	ms.seq++
	seq := uint64(conn)<<40 | ms.seq
	ms.expect[conn] = seq
	isGet := ms.eng.RNG().Float64() < ms.cfg.GetRatio
	key := ms.key(ms.seq)

	payload := make([]byte, pkt.ProbeLen+2+len(key), pkt.ProbeLen+2+len(key)+ms.cfg.ValueSize)
	pkt.PutProbe(payload, seq, now)
	op := OpGet
	if !isGet {
		op = OpSet
		payload = append(payload, make([]byte, ms.cfg.ValueSize)...)
	}
	payload[pkt.ProbeLen] = op
	payload[pkt.ProbeLen+1] = byte(len(key))
	copy(payload[pkt.ProbeLen+2:], key)

	frame := overlay.EncapToServer(ms.src, ms.ctr, Port, payload)
	arrive := now + ms.cfg.ClientTx + ms.host.Costs.WireLatency + ms.host.Costs.Serialization(len(frame))
	f := frame
	ms.eng.At(arrive, func() { ms.host.InjectFromWire(ms.eng.Now(), f) })

	// Arm the per-connection timeout: a dropped request or reply must not
	// stall the connection forever.
	ms.timeouts[conn] = ms.eng.After(ms.cfg.Timeout, func() {
		ms.Timeouts++
		ms.sendNext(conn)
	})
}

func (ms *Memaslap) onReply(now sim.Time, payload []byte, _ pkt.FlowKey) {
	seq, sentAt, err := pkt.ParseProbe(payload)
	if err != nil {
		return
	}
	conn := int(seq >> 40)
	if conn < 0 || conn >= len(ms.timeouts) {
		return
	}
	if ms.expect[conn] != seq {
		return // stale reply from a request that already timed out
	}
	ms.eng.Cancel(ms.timeouts[conn])
	rtt := now + ms.cfg.ClientRx - sentAt
	if sentAt >= ms.cfg.Warmup {
		ms.Hist.Record(rtt)
		ms.Ops++
		ms.measured.to = now
	}
	ms.sendNext(conn)
}
