// Package webserver models the Fig. 13 application benchmark: an
// nginx-style static server in a container, driven by a wrk2-style
// constant-rate HTTP client over a single connection.
//
// HTTP runs over the simulated TCP path; each request is one segment and
// each response (a <1 KB static page) one segment. wrk2's signature
// behaviour is preserved: requests are sent on schedule regardless of
// outstanding responses, and latency is measured from the *scheduled* send
// time, avoiding coordinated omission.
package webserver

import (
	"prism/internal/overlay"
	"prism/internal/pkt"
	"prism/internal/sim"
	"prism/internal/socket"
	"prism/internal/stats"
)

// Port is the HTTP service port.
const Port = 80

// ServerConfig sets the nginx-like costs and the page served.
type ServerConfig struct {
	// ParseCost covers request parsing + handler dispatch; WriteCost the
	// response construction (charged together per request).
	RequestCost sim.Time
	// PageSize is the static response body (paper: <1 KB HTML).
	PageSize int
}

// DefaultServerConfig mirrors nginx serving a small static file.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		RequestCost: 8 * sim.Microsecond,
		PageSize:    900,
	}
}

// Server is the nginx container app.
type Server struct {
	cfg ServerConfig
	ctr *overlay.Container

	Requests uint64
}

// InstallServer binds the server on the container's TCP port 80.
func InstallServer(ctr *overlay.Container, cfg ServerConfig) (*Server, error) {
	s := &Server{cfg: cfg, ctr: ctr}
	app := socket.AppFunc{
		Cost: func(socket.Message) sim.Time { return s.cfg.RequestCost },
		Fn:   s.onRequest,
	}
	if _, err := ctr.Bind(pkt.ProtoTCP, Port, app, 4096); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) onRequest(done sim.Time, m socket.Message) {
	if len(m.Payload) < pkt.ProbeLen {
		return
	}
	s.Requests++
	body := make([]byte, pkt.ProbeLen+s.cfg.PageSize)
	copy(body, m.Payload[:pkt.ProbeLen]) // echo the probe ahead of the page
	dst := overlay.RemoteEndpoint{
		IP:   m.From.SrcIP,
		Port: m.From.SrcPort,
		MAC:  pkt.MAC{0x02, 0x42, m.From.SrcIP[0], m.From.SrcIP[1], m.From.SrcIP[2], m.From.SrcIP[3]},
	}
	s.ctr.SendTCP(done, dst, Port, 0, body)
}

// Wrk2Config parameterizes the client.
type Wrk2Config struct {
	// Rate is requests per second over the single connection.
	Rate float64
	// ClientTx/ClientRx are the unloaded client-machine constants.
	ClientTx sim.Time
	ClientRx sim.Time
	// Warmup discards samples scheduled before it.
	Warmup sim.Time
}

// DefaultWrk2Config uses a light constant request rate, as the paper's
// single-connection wrk2 run.
func DefaultWrk2Config() Wrk2Config {
	return Wrk2Config{
		Rate:     2000,
		ClientTx: 8 * sim.Microsecond,
		ClientRx: 22 * sim.Microsecond,
	}
}

// Wrk2 is the constant-rate HTTP client.
type Wrk2 struct {
	cfg Wrk2Config

	eng  *sim.Engine
	host *overlay.Host
	ctr  *overlay.Container
	src  overlay.RemoteEndpoint

	// Hist records full round-trip latency, measured from the scheduled
	// send time (coordinated-omission-free, as wrk2 does).
	Hist *stats.Histogram

	Sent      uint64
	Completed uint64

	seq     uint64
	stopped bool
	lastAt  sim.Time
	firstAt sim.Time
}

// NewWrk2 builds the client against the nginx container.
func NewWrk2(eng *sim.Engine, host *overlay.Host, ctr *overlay.Container,
	src overlay.RemoteEndpoint, cfg Wrk2Config) *Wrk2 {
	return &Wrk2{cfg: cfg, eng: eng, host: host, ctr: ctr, src: src, Hist: stats.NewHistogram(), firstAt: -1}
}

// Start registers the reply handler and begins the schedule.
func (w *Wrk2) Start(client interface {
	Register(port uint16, fn func(sim.Time, []byte, pkt.FlowKey))
}, at sim.Time) {
	client.Register(w.src.Port, w.onResponse)
	w.eng.At(at, w.sendNext)
}

// Stop ends the schedule.
func (w *Wrk2) Stop() { w.stopped = true }

// ThroughputReqs returns completed requests/sec over the sampled window.
func (w *Wrk2) ThroughputReqs() float64 {
	window := w.lastAt - w.firstAt
	if window <= 0 || w.firstAt < 0 {
		return 0
	}
	return float64(w.Completed) / window.Seconds()
}

func (w *Wrk2) sendNext() {
	if w.stopped {
		return
	}
	now := w.eng.Now()
	w.seq++
	w.Sent++
	payload := make([]byte, pkt.ProbeLen+26)
	pkt.PutProbe(payload, w.seq, now)
	copy(payload[pkt.ProbeLen:], "GET /index.html HTTP/1.1\r\n")
	frame := overlay.EncapTCPToServer(w.src, w.ctr, Port, uint32(w.seq), payload)
	arrive := now + w.cfg.ClientTx + w.host.Costs.WireLatency + w.host.Costs.Serialization(len(frame))
	f := frame
	w.eng.At(arrive, func() { w.host.InjectFromWire(w.eng.Now(), f) })
	w.eng.After(sim.Time(float64(sim.Second)/w.cfg.Rate), w.sendNext)
}

func (w *Wrk2) onResponse(now sim.Time, payload []byte, _ pkt.FlowKey) {
	_, sentAt, err := pkt.ParseProbe(payload)
	if err != nil {
		return
	}
	if sentAt < w.cfg.Warmup {
		return
	}
	w.Hist.Record(now + w.cfg.ClientRx - sentAt)
	w.Completed++
	if w.firstAt < 0 {
		w.firstAt = now
	}
	w.lastAt = now
}
