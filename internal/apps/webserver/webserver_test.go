package webserver

import (
	"testing"

	"prism/internal/cpu"
	"prism/internal/nic"
	"prism/internal/overlay"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/traffic"
)

func newRig(t *testing.T, mode prio.Mode) (*sim.Engine, *overlay.Host, *traffic.Client, *overlay.Container, *Server) {
	t.Helper()
	eng := sim.NewEngine(5)
	host := overlay.NewHost(eng, overlay.Config{
		Mode: mode, CStates: cpu.C1, AppCStates: cpu.C1,
		NIC: nic.Config{RxUsecs: 8 * sim.Microsecond, RxFrames: 32, AdaptiveIdle: 100 * sim.Microsecond, GRO: true},
	})
	client := traffic.NewClient(host)
	ctr := host.AddContainer("nginx")
	srv, err := InstallServer(ctr, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, host, client, ctr, srv
}

func TestRequestResponse(t *testing.T) {
	eng, host, client, ctr, srv := newRig(t, prio.ModeVanilla)
	cfg := DefaultWrk2Config()
	cfg.Rate = 1000
	w := NewWrk2(eng, host, ctr, overlay.ClientContainer(0, 40000), cfg)
	w.Start(client, 0)
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if w.Sent < 99 || w.Sent > 101 {
		t.Errorf("Sent = %d, want ~100", w.Sent)
	}
	if w.Completed < w.Sent-2 {
		t.Errorf("Completed = %d of %d on an idle server", w.Completed, w.Sent)
	}
	if srv.Requests != w.Completed {
		t.Errorf("server requests %d != completions %d", srv.Requests, w.Completed)
	}
	if w.Hist.Count() == 0 {
		t.Fatal("no latency samples")
	}
	med := w.Hist.Median()
	if med < 30*sim.Microsecond || med > 300*sim.Microsecond {
		t.Errorf("idle HTTP median = %v, want ~100µs scale", med)
	}
	if w.ThroughputReqs() < 500 {
		t.Errorf("throughput = %.0f req/s", w.ThroughputReqs())
	}
}

func TestWrk2Stop(t *testing.T) {
	eng, host, client, ctr, _ := newRig(t, prio.ModeVanilla)
	cfg := DefaultWrk2Config()
	cfg.Rate = 1000
	w := NewWrk2(eng, host, ctr, overlay.ClientContainer(0, 40000), cfg)
	w.Start(client, 0)
	eng.At(10*sim.Millisecond, w.Stop)
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if w.Sent > 12 {
		t.Errorf("Sent = %d after Stop at 10ms", w.Sent)
	}
}

func TestWarmupFiltering(t *testing.T) {
	eng, host, client, ctr, _ := newRig(t, prio.ModeVanilla)
	cfg := DefaultWrk2Config()
	cfg.Rate = 1000
	cfg.Warmup = 50 * sim.Millisecond
	w := NewWrk2(eng, host, ctr, overlay.ClientContainer(0, 40000), cfg)
	w.Start(client, 0)
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if w.Hist.Count() == 0 || w.Hist.Count() >= w.Sent {
		t.Errorf("warmup filtering broken: %d samples of %d sent", w.Hist.Count(), w.Sent)
	}
}

func TestBusyLatencyRises(t *testing.T) {
	run := func(busy bool) sim.Time {
		eng, host, client, ctr, _ := newRig(t, prio.ModeVanilla)
		w := NewWrk2(eng, host, ctr, overlay.ClientContainer(0, 40000), DefaultWrk2Config())
		w.Start(client, 0)
		if busy {
			st := traffic.NewTCPStream(eng, host, host.AddContainer("bg"), overlay.ClientContainer(1, 41000), 5201, 55_000)
			if err := st.InstallSink(600); err != nil {
				t.Fatal(err)
			}
			st.Start(0)
		}
		if err := eng.Run(200 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return w.Hist.Mean()
	}
	idle, busy := run(false), run(true)
	if busy <= idle {
		t.Errorf("busy mean %v <= idle mean %v", busy, idle)
	}
}

func TestShortRequestIgnored(t *testing.T) {
	eng, host, _, ctr, srv := newRig(t, prio.ModeVanilla)
	// A request with no probe must not crash or be served.
	eng.At(0, func() {
		host.InjectFromWire(0, overlay.EncapTCPToServer(
			overlay.ClientContainer(0, 40000), ctr, Port, 0, []byte("x")))
	})
	if err := eng.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if srv.Requests != 0 {
		t.Errorf("short request served: %d", srv.Requests)
	}
}
