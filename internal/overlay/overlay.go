// Package overlay composes the substrates into the paper's testbed: a
// server machine whose receive path is fully simulated (NIC → VXLAN decap
// → bridge → veth → socket → app thread), reachable over a point-to-point
// 100 GbE link, hosting Docker-style containers on a VXLAN overlay plus a
// host-network socket table.
//
// The client machine is intentionally *not* packet-simulated: the paper's
// experiments never load the client, so its stack contributes only a
// constant to measured round-trip latency. Traffic generators inject wire
// frames toward the server and receive the server's replies via a
// callback; see internal/traffic.
package overlay

import (
	"fmt"

	"prism/internal/bridge"
	"prism/internal/core"
	"prism/internal/cpu"
	"prism/internal/fault"
	"prism/internal/napi"
	"prism/internal/netdev"
	"prism/internal/nic"
	"prism/internal/obs"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sched"
	"prism/internal/sim"
	"prism/internal/socket"
	"prism/internal/softirq"
	"prism/internal/veth"
)

// VNI is the overlay network identifier used by the testbed.
const VNI = 256

// Well-known addresses of the two machines.
var (
	ServerIP   = pkt.Addr(192, 168, 1, 2)
	ServerMAC  = pkt.MAC{0x52, 0x54, 0x00, 0x00, 0x00, 0x02}
	ClientIP   = pkt.Addr(192, 168, 1, 1)
	ClientMAC  = pkt.MAC{0x52, 0x54, 0x00, 0x00, 0x00, 0x01}
	serverCIDR = pkt.IPv4{172, 17, 0, 0}
)

// RxEngine is the receive-engine surface the topology needs; the unified
// softirq runtime (internal/softirq) provides it for every poll policy.
type RxEngine interface {
	netdev.Scheduler
	Stats() softirq.Stats
	Core() *cpu.Core
	SetOnPoll(func(softirq.PollObservation))
	SetObs(*obs.Pipeline)
	SetFault(*fault.Plane)
	SetShed(bool)
}

// Config parameterizes the server host.
type Config struct {
	// RxQueues is the number of NIC RX queues, each with its own NAPI
	// engine on its own processing core — RSS with the queues' IRQs
	// spread over dedicated cores. Flows are steered by hashing the outer
	// headers (a VXLAN inner flow always lands on one queue, via the
	// outer source-port entropy). 0 or 1 is the paper's single-core
	// configuration.
	RxQueues int

	// Mode selects the receive engine: vanilla, PRISM-batch or PRISM-sync.
	Mode prio.Mode
	// Policy optionally overrides the softirq poll policy by registry name
	// ("vanilla", "prism", "headonly", "dualq", …); empty derives the
	// policy from Mode. The Mode still drives flow classification and the
	// PRISM batch/sync switch for policies that consult it.
	Policy string
	// Costs is the CPU cost model; nil uses netdev.DefaultCosts.
	Costs *netdev.Costs
	// CStates configures the processing core's power management; nil means
	// always-on. The paper's testbed runs with C1 (cpu.C1).
	CStates []cpu.CState
	// NIC carries interrupt moderation and GRO settings. Name and HostIP
	// are filled in by NewHost.
	NIC nic.Config
	// AppCStates configures application cores (usually same as CStates).
	AppCStates []cpu.CState

	// Obs, when set, instruments the whole receive path of this host —
	// NIC DMA/IRQ instants, per-stage spans in both engines, socket
	// deliveries — into one observability pipeline. One pipeline per host
	// keeps collection shard-local in parallel topologies.
	Obs *obs.Pipeline

	// Fault, when set, threads the fault-injection plane through every
	// layer of this host: wire faults before DMA, ring/IRQ faults in the
	// NIC, softirq stalls in the RX engines, consumer stalls on the app
	// threads. Nil (the default) leaves the datapath bit-identical to a
	// plane-less build.
	Fault *fault.Plane
	// Shed enables the priority-aware overload drop policy in the NIC ring
	// and on softirq stage transitions.
	Shed bool
}

// Container is one Docker-style container on the overlay network.
type Container struct {
	Name string
	MAC  pkt.MAC
	IP   pkt.IPv4

	Sockets *socket.Table
	Thread  *sched.Thread
	Core    *cpu.Core

	host *Host
}

// Host is the simulated server machine.
type Host struct {
	Eng   *sim.Engine
	Costs *netdev.Costs
	DB    *prio.DB
	Mode  prio.Mode

	// ProcCore, Rx, NIC, Bridge and Backlog are RX queue 0 — the paper's
	// single-core setup uses these directly. With Config.RxQueues > 1 the
	// full per-queue sets are in the plural slices below (index = queue).
	ProcCore *cpu.Core
	Rx       RxEngine
	NIC      *nic.NIC
	Bridge   *bridge.Bridge
	// Backlog is the per-CPU generic receive context shared by every veth
	// on the processing core (softnet_data.input_pkt_queue) — stage 3 of
	// the pipeline. It carries the name "veth0" because that is how the
	// paper's traces label the stage.
	Backlog *veth.Backlog

	// Per-RX-queue sets: each queue has its own NAPI engine on its own
	// core, plus its own per-CPU gro_cells and backlog contexts, exactly
	// as RSS with per-core IRQ affinity gives the kernel.
	ProcCores   []*cpu.Core
	Rxs         []RxEngine
	NICs        []*nic.NIC
	BridgeCells []*bridge.Bridge
	Backlogs    []*veth.Backlog

	HostSockets *socket.Table
	HostThread  *sched.Thread

	Containers []*Container

	// Tap, when set, observes every wire frame (rx: client→server before
	// DMA; tx: server→client at transmission). Used by the pcap exporter.
	Tap func(now sim.Time, frame []byte, tx bool)

	// WireTx, when set, takes over outbound wire delivery: instead of
	// scheduling the remote receive on the host's own engine, transmit
	// hands (departure time, computed arrival time, frame) to the hook.
	// Parallel topologies (internal/par) use it to carry frames over a
	// cross-shard link whose lookahead is the wire latency, so the client
	// machine can live on a different shard than the server.
	WireTx func(now, arrive sim.Time, frame []byte)

	// Fault is the host's fault plane (nil when not injecting).
	Fault *fault.Plane

	cfg      Config
	remoteRx func(now sim.Time, frame []byte)
	nextCore int
	// TxFrames counts frames the host sent back to the wire.
	TxFrames uint64
	// RxWire counts frames that arrived from the wire (before any fault
	// treatment); the invariant checker's conservation ledger starts here.
	RxWire uint64

	// delayPool holds copies of jitter-delayed wire frames between their
	// original arrival and their deferred DMA (the injector's buffer is
	// reused as soon as InjectFromWire returns). delayedInFlight counts
	// copies currently parked.
	delayPool       pkt.FramePool
	delayedInFlight int
}

// NewHost builds the server. The priority database starts empty and in the
// configured mode; experiments add rules at runtime.
func NewHost(eng *sim.Engine, cfg Config) *Host {
	if cfg.Costs == nil {
		cfg.Costs = netdev.DefaultCosts()
	}
	if cfg.Mode == 0 {
		cfg.Mode = prio.ModeVanilla
	}
	h := &Host{
		Eng:   eng,
		Costs: cfg.Costs,
		DB:    prio.NewDB(),
		Mode:  cfg.Mode,
	}
	h.DB.SetMode(cfg.Mode)
	if cfg.RxQueues < 1 {
		cfg.RxQueues = 1
	}
	h.cfg = cfg

	h.Fault = cfg.Fault

	h.HostSockets = socket.NewTable("host")
	h.HostSockets.Obs = cfg.Obs
	h.HostThread = sched.NewThread("host-app", eng, cpu.NewCore(h.allocCore(), cfg.AppCStates), cfg.Costs.AppWakeup)
	cfg.Fault.WatchConsumer(h.HostThread)

	// Resolve the poll policy name once; every RX queue gets its own
	// instance (policies hold per-CPU state).
	polName := cfg.Policy
	if polName == "" {
		if cfg.Mode == prio.ModeVanilla {
			polName = napi.PolicyName
		} else {
			polName = core.PolicyName
		}
	}
	for q := 0; q < cfg.RxQueues; q++ {
		coreQ := cpu.NewCore(h.allocCore(), cfg.CStates)
		pol, err := softirq.NewPolicy(polName, h.DB)
		if err != nil {
			panic("overlay: " + err.Error())
		}
		rx := softirq.New(eng, coreQ, cfg.Costs, pol)
		rx.SetObs(cfg.Obs)
		rx.SetFault(cfg.Fault)
		rx.SetShed(cfg.Shed)

		nicCfg := cfg.NIC
		nicCfg.Name = fmt.Sprintf("eth0-rxq%d", q)
		if cfg.RxQueues == 1 {
			nicCfg.Name = "eth0"
		}
		nicCfg.HostIP = ServerIP
		// Each queue's SKB IDs live in a distinct range so packet
		// identities are unique host-wide (the obs pipeline keys
		// per-packet state by ID).
		nicCfg.FirstID = uint64(q) << 48
		if polName == napi.PolicyName {
			// Vanilla NAPI has a single input queue per device and cannot
			// use a priority ring even if the hardware offers one.
			nicCfg.PriorityRings = false
		}
		nicCfg.Shed = cfg.Shed
		n := nic.New(eng, rx, cfg.Costs, h.DB, h.HostSockets, nicCfg)
		n.SetObs(cfg.Obs)
		n.SetFault(cfg.Fault)
		cfg.Fault.Watch(n)

		brName, veName := "br0", "veth0"
		if cfg.RxQueues > 1 {
			brName = fmt.Sprintf("br0-cell%d", q)
			veName = fmt.Sprintf("veth-cpu%d", q)
		}
		br := bridge.New(brName, cfg.Costs)
		n.AttachBridge(br.Dev)
		bl := veth.NewBacklog(veName, cfg.Costs)
		br.AddPort(bl.Dev)

		h.ProcCores = append(h.ProcCores, coreQ)
		h.Rxs = append(h.Rxs, rx)
		h.NICs = append(h.NICs, n)
		h.BridgeCells = append(h.BridgeCells, br)
		h.Backlogs = append(h.Backlogs, bl)
	}
	h.ProcCore = h.ProcCores[0]
	h.Rx = h.Rxs[0]
	h.NIC = h.NICs[0]
	h.Bridge = h.BridgeCells[0]
	h.Backlog = h.Backlogs[0]
	return h
}

func (h *Host) allocCore() int {
	id := h.nextCore
	h.nextCore++
	return id
}

// AddContainer creates a container with a deterministic MAC/IP derived
// from its index, its own application core, and wires its veth into the
// bridge (with a static FDB entry, as Docker's overlay driver installs).
func (h *Host) AddContainer(name string) *Container {
	idx := len(h.Containers) + 2 // .0 is the network, .1 the gateway
	if idx > 250 {
		panic("overlay: too many containers")
	}
	c := &Container{
		Name: name,
		MAC:  pkt.MAC{0x02, 0x42, serverCIDR[0], serverCIDR[1], serverCIDR[2], byte(idx)},
		IP:   pkt.Addr(serverCIDR[0], serverCIDR[1], serverCIDR[2], byte(idx)),
		host: h,
	}
	c.Sockets = socket.NewTable(name)
	c.Sockets.Obs = h.cfg.Obs
	c.Core = cpu.NewCore(h.allocCore(), h.cfg.AppCStates)
	c.Thread = sched.NewThread(name+"-app", h.Eng, c.Core, h.Costs.AppWakeup)
	h.cfg.Fault.WatchConsumer(c.Thread)
	for q := range h.Backlogs {
		h.Backlogs[q].Register(c.MAC, c.IP, c.Sockets)
		h.BridgeCells[q].LearnStatic(c.MAC, h.Backlogs[q].Dev)
	}
	h.Containers = append(h.Containers, c)
	return c
}

// AttachRemote registers the callback receiving frames the server
// transmits toward the client machine.
func (h *Host) AttachRemote(rx func(now sim.Time, frame []byte)) { h.remoteRx = rx }

// InjectFromWire delivers a frame from the link into the NIC at time now
// (the frame has already incurred the sender-side and wire delays). With
// multiple RX queues the frame is RSS-steered by its outer flow hash.
func (h *Host) InjectFromWire(now sim.Time, frame []byte) {
	if h.Tap != nil {
		h.Tap(now, frame, false)
	}
	h.RxWire++
	if h.Fault != nil {
		out, drop, delay := h.Fault.WireRx(now, frame)
		if drop {
			return
		}
		if delay > 0 {
			// Generators reuse their frame buffer the moment this call
			// returns; a jitter-delayed frame must survive until its
			// deferred DMA, so park a copy in the host's delay pool.
			buf := h.delayPool.Get(len(out))
			copy(buf.B, out)
			h.delayedInFlight++
			h.Eng.CallAt(now+delay, runDelayedInject, h, buf)
			return
		}
		frame = out
	}
	h.NICs[h.rssQueue(frame)].DMA(now, frame)
}

// runDelayedInject is the deferred-DMA trampoline for jitter-delayed
// frames; a top-level function so CallAt needs no per-frame closure.
func runDelayedInject(at sim.Time, a1, a2 any) {
	h := a1.(*Host)
	buf := a2.(*pkt.Frame)
	h.delayedInFlight--
	h.NICs[h.rssQueue(buf.B)].DMA(at, buf.B)
	buf.Release()
}

// DelayedInFlight reports how many jitter-delayed frames are parked
// between arrival and their deferred DMA.
func (h *Host) DelayedInFlight() int { return h.delayedInFlight }

// DelayPoolOutstanding reports the delay pool's checked-out buffer count;
// it must equal DelayedInFlight at all times and be zero after a drain.
func (h *Host) DelayPoolOutstanding() int { return h.delayPool.Outstanding() }

// QueueFor reports which RX queue RSS steers a frame to; experiments use
// it to construct colliding or isolated flow placements deliberately.
func (h *Host) QueueFor(frame []byte) int { return h.rssQueue(frame) }

// rssQueue hashes the outer 5-tuple to an RX queue, as NIC RSS does.
func (h *Host) rssQueue(frame []byte) int { return RSSQueue(frame, len(h.NICs)) }

// RSSQueue is the NIC's RSS steering function: it hashes a frame's outer
// 5-tuple onto one of queues RX queues. It is exported so parallel
// topologies that shard the host per RX queue (internal/par) can steer
// frames to the right shard with the exact hash the NIC would use.
func RSSQueue(frame []byte, queues int) int {
	if queues <= 1 {
		return 0
	}
	flow, err := pkt.ParseFlow(frame)
	if err != nil {
		return 0
	}
	hash := uint32(0x811c9dc5)
	mix := func(b byte) { hash ^= uint32(b); hash *= 16777619 }
	for _, b := range flow.SrcIP {
		mix(b)
	}
	for _, b := range flow.DstIP {
		mix(b)
	}
	mix(byte(flow.SrcPort >> 8))
	mix(byte(flow.SrcPort))
	mix(byte(flow.DstPort >> 8))
	mix(byte(flow.DstPort))
	mix(flow.Proto)
	return int(hash % uint32(queues))
}

// transmit sends a frame toward the client machine, modelling wire latency
// and serialization.
func (h *Host) transmit(now sim.Time, frame []byte) {
	h.TxFrames++
	if h.Tap != nil {
		h.Tap(now, frame, true)
	}
	at := now + h.Costs.WireLatency + h.Costs.Serialization(len(frame))
	if h.WireTx != nil {
		h.WireTx(now, at, frame)
		return
	}
	if h.remoteRx == nil {
		return
	}
	rx := h.remoteRx
	f := frame
	h.Eng.At(at, func() { rx(at, f) })
}

// Bind binds a UDP or TCP server app inside the container.
func (c *Container) Bind(proto uint8, port uint16, app socket.App, recvCap int) (*socket.Socket, error) {
	return c.Sockets.Bind(proto, port, c.Thread, app, recvCap)
}

// RemoteEndpoint identifies a peer container on the client machine.
type RemoteEndpoint struct {
	MAC  pkt.MAC
	IP   pkt.IPv4
	Port uint16
}

// ClientContainer returns the deterministic addresses of container idx on
// the *client* machine (used as reply destinations and generator sources).
func ClientContainer(idx int, port uint16) RemoteEndpoint {
	return RemoteEndpoint{
		MAC:  pkt.MAC{0x02, 0x42, serverCIDR[0], serverCIDR[1], 0x64, byte(idx + 2)},
		IP:   pkt.Addr(serverCIDR[0], serverCIDR[1], 100, byte(idx+2)),
		Port: port,
	}
}

// SendUDP transmits a UDP reply from the container to a client-side
// container over the overlay: the egress stack cost (veth→bridge→VXLAN
// encap→NIC TX) is charged to the application thread, as sendto(2) work
// happens in syscall context — the paper leaves the egress path unchanged.
func (c *Container) SendUDP(now sim.Time, dst RemoteEndpoint, srcPort uint16, payload []byte) {
	h := c.host
	// Encode at call time: payload is only guaranteed valid while the
	// caller (usually an OnMessage callback) runs — it may alias a pooled
	// frame that is recycled as soon as the callback returns.
	inner := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: c.MAC, DstMAC: dst.MAC, SrcIP: c.IP, DstIP: dst.IP,
		SrcPort: srcPort, DstPort: dst.Port, Payload: payload,
	})
	frame := pkt.Encapsulate(pkt.VXLANSpec{
		OuterSrcMAC: ServerMAC, OuterDstMAC: ClientMAC,
		OuterSrcIP: ServerIP, OuterDstIP: ClientIP,
		SrcPort: entropyPort(c.IP, dst.IP, srcPort, dst.Port), VNI: VNI,
	}, inner)
	c.Thread.Submit(now, h.Costs.AppTx, func(done sim.Time) { h.transmit(done, frame) })
}

// SendTCP transmits a TCP segment (reply data) from the container,
// mirroring SendUDP.
func (c *Container) SendTCP(now sim.Time, dst RemoteEndpoint, srcPort uint16, seq uint32, payload []byte) {
	h := c.host
	// Encoded at call time; see SendUDP.
	inner := pkt.BuildTCPFrame(pkt.TCPFrameSpec{
		SrcMAC: c.MAC, DstMAC: dst.MAC, SrcIP: c.IP, DstIP: dst.IP,
		SrcPort: srcPort, DstPort: dst.Port, Seq: seq,
		Flags: pkt.TCPAck | pkt.TCPPsh, Payload: payload,
	})
	frame := pkt.Encapsulate(pkt.VXLANSpec{
		OuterSrcMAC: ServerMAC, OuterDstMAC: ClientMAC,
		OuterSrcIP: ServerIP, OuterDstIP: ClientIP,
		SrcPort: entropyPort(c.IP, dst.IP, srcPort, dst.Port), VNI: VNI,
	}, inner)
	c.Thread.Submit(now, h.Costs.AppTx, func(done sim.Time) { h.transmit(done, frame) })
}

// BindHost binds a server app on the host network (Fig. 10 experiments).
func (h *Host) BindHost(proto uint8, port uint16, app socket.App, recvCap int) (*socket.Socket, error) {
	return h.HostSockets.Bind(proto, port, h.HostThread, app, recvCap)
}

// SendHostUDP transmits a plain (non-encapsulated) UDP reply from a host
// socket toward the client machine.
func (h *Host) SendHostUDP(now sim.Time, dstPort, srcPort uint16, payload []byte) {
	// Encoded at call time; see Container.SendUDP.
	frame := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: ServerMAC, DstMAC: ClientMAC, SrcIP: ServerIP, DstIP: ClientIP,
		SrcPort: srcPort, DstPort: dstPort, Payload: payload,
	})
	h.HostThread.Submit(now, h.Costs.AppTx, func(done sim.Time) { h.transmit(done, frame) })
}

// entropyPort mimics the VXLAN source-port entropy hash (RFC 7348 §5).
func entropyPort(a, b pkt.IPv4, p1, p2 uint16) uint16 {
	h := uint32(0x9e37)
	for _, x := range []byte{a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]} {
		h = h*31 + uint32(x)
	}
	h = h*31 + uint32(p1)
	h = h*31 + uint32(p2)
	return uint16(49152 + h%16384)
}

// EncapToServer builds a client→server overlay frame: inner UDP from a
// client container to a server container, VXLAN-wrapped for the underlay.
// Traffic generators use it.
func EncapToServer(src RemoteEndpoint, dst *Container, dstPort uint16, payload []byte) []byte {
	inner := pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: src.MAC, DstMAC: dst.MAC, SrcIP: src.IP, DstIP: dst.IP,
		SrcPort: src.Port, DstPort: dstPort, Payload: payload,
	})
	return pkt.Encapsulate(pkt.VXLANSpec{
		OuterSrcMAC: ClientMAC, OuterDstMAC: ServerMAC,
		OuterSrcIP: ClientIP, OuterDstIP: ServerIP,
		SrcPort: entropyPort(src.IP, dst.IP, src.Port, dstPort), VNI: VNI,
	}, inner)
}

// EncapTCPToServer builds a client→server overlay TCP segment.
func EncapTCPToServer(src RemoteEndpoint, dst *Container, dstPort uint16, seq uint32, payload []byte) []byte {
	inner := pkt.BuildTCPFrame(pkt.TCPFrameSpec{
		SrcMAC: src.MAC, DstMAC: dst.MAC, SrcIP: src.IP, DstIP: dst.IP,
		SrcPort: src.Port, DstPort: dstPort, Seq: seq,
		Flags: pkt.TCPAck | pkt.TCPPsh, Payload: payload,
	})
	return pkt.Encapsulate(pkt.VXLANSpec{
		OuterSrcMAC: ClientMAC, OuterDstMAC: ServerMAC,
		OuterSrcIP: ClientIP, OuterDstIP: ServerIP,
		SrcPort: entropyPort(src.IP, dst.IP, src.Port, dstPort), VNI: VNI,
	}, inner)
}

// EncapTCPToServerInto is EncapTCPToServer encoding into caller-provided
// scratch: dst receives the outer frame, scratch holds the inner frame
// while it is wrapped. Both are reused when their capacity allows. It
// returns the encoded frame and the (possibly grown) inner scratch.
func EncapTCPToServerInto(dst, scratch []byte, src RemoteEndpoint, dstC *Container,
	dstPort uint16, seq uint32, payload []byte) (frame, inner []byte) {
	inner = pkt.AppendTCPFrame(scratch, pkt.TCPFrameSpec{
		SrcMAC: src.MAC, DstMAC: dstC.MAC, SrcIP: src.IP, DstIP: dstC.IP,
		SrcPort: src.Port, DstPort: dstPort, Seq: seq,
		Flags: pkt.TCPAck | pkt.TCPPsh, Payload: payload,
	})
	frame = pkt.EncapInto(dst, pkt.VXLANSpec{
		OuterSrcMAC: ClientMAC, OuterDstMAC: ServerMAC,
		OuterSrcIP: ClientIP, OuterDstIP: ServerIP,
		SrcPort: entropyPort(src.IP, dstC.IP, src.Port, dstPort), VNI: VNI,
	}, inner)
	return frame, inner
}

// HostUDPToServer builds a plain client→server UDP frame for host-network
// experiments.
func HostUDPToServer(srcPort, dstPort uint16, payload []byte) []byte {
	return pkt.BuildUDPFrame(pkt.UDPFrameSpec{
		SrcMAC: ClientMAC, DstMAC: ServerMAC, SrcIP: ClientIP, DstIP: ServerIP,
		SrcPort: srcPort, DstPort: dstPort, Payload: payload,
	})
}
