package overlay

import (
	"testing"

	"prism/internal/cpu"
	"prism/internal/pkt"
	"prism/internal/prio"
	"prism/internal/sim"
	"prism/internal/socket"
)

func newTestHost(t *testing.T, mode prio.Mode) (*sim.Engine, *Host) {
	t.Helper()
	eng := sim.NewEngine(7)
	h := NewHost(eng, Config{Mode: mode, CStates: cpu.C1, AppCStates: cpu.C1})
	return eng, h
}

type recorder struct {
	msgs []socket.Message
}

func (r *recorder) ProcessingCost(socket.Message) sim.Time { return 1000 }
func (r *recorder) OnMessage(done sim.Time, m socket.Message) {
	r.msgs = append(r.msgs, m)
}

func TestEndToEndOverlayDelivery(t *testing.T) {
	for _, mode := range []prio.Mode{prio.ModeVanilla, prio.ModeBatch, prio.ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			eng, h := newTestHost(t, mode)
			ctr := h.AddContainer("srv")
			rec := &recorder{}
			if _, err := ctr.Bind(pkt.ProtoUDP, 11211, rec, 0); err != nil {
				t.Fatal(err)
			}
			client := ClientContainer(0, 40000)
			eng.At(0, func() {
				for i := 0; i < 10; i++ {
					h.InjectFromWire(eng.Now(), EncapToServer(client, ctr, 11211, []byte("hello")))
				}
			})
			if err := eng.Run(10 * sim.Millisecond); err != nil {
				t.Fatal(err)
			}
			if len(rec.msgs) != 10 {
				t.Fatalf("app received %d messages, want 10", len(rec.msgs))
			}
			for _, m := range rec.msgs {
				if string(m.Payload) != "hello" {
					t.Errorf("payload = %q", m.Payload)
				}
				if m.From.SrcIP != client.IP || m.From.DstPort != 11211 {
					t.Errorf("flow = %v", m.From)
				}
				if m.Delivered <= m.Arrived {
					t.Errorf("timestamps not ordered: %v %v", m.Arrived, m.Delivered)
				}
			}
			st := h.Rx.Stats()
			if st.Delivered != 10 {
				t.Errorf("engine delivered = %d", st.Delivered)
			}
			// Every packet crossed all three devices.
			if h.NIC.Dev.Processed != 10 || h.Bridge.Dev.Processed != 10 || h.Backlog.Dev.Processed != 10 {
				t.Errorf("per-device processed = %d/%d/%d",
					h.NIC.Dev.Processed, h.Bridge.Dev.Processed, h.Backlog.Dev.Processed)
			}
		})
	}
}

func TestHighPriorityClassificationEndToEnd(t *testing.T) {
	eng, h := newTestHost(t, prio.ModeBatch)
	ctr := h.AddContainer("srv")
	rec := &recorder{}
	if _, err := ctr.Bind(pkt.ProtoUDP, 11211, rec, 0); err != nil {
		t.Fatal(err)
	}
	h.DB.Add(prio.Rule{IP: ctr.IP, Port: 11211})
	client := ClientContainer(0, 40000)
	eng.At(0, func() {
		h.InjectFromWire(0, EncapToServer(client, ctr, 11211, []byte("hi")))
	})
	if err := eng.Run(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(rec.msgs) != 1 || !rec.msgs[0].HighPriority {
		t.Fatalf("msgs = %+v", rec.msgs)
	}
}

func TestContainerReplyReachesRemote(t *testing.T) {
	eng, h := newTestHost(t, prio.ModeVanilla)
	ctr := h.AddContainer("srv")
	client := ClientContainer(0, 40000)

	var replies [][]byte
	var replyAt sim.Time
	h.AttachRemote(func(now sim.Time, frame []byte) {
		vni, inner, err := pkt.Decapsulate(frame)
		if err != nil {
			t.Errorf("reply not VXLAN: %v", err)
			return
		}
		if vni != VNI {
			t.Errorf("reply VNI = %d", vni)
		}
		p, err := pkt.TransportPayload(inner)
		if err != nil {
			t.Errorf("reply payload: %v", err)
			return
		}
		replies = append(replies, p)
		replyAt = now
	})

	echo := socket.AppFunc{
		Cost: func(socket.Message) sim.Time { return 500 },
		Fn: func(done sim.Time, m socket.Message) {
			ctr.SendUDP(done, client, 11211, m.Payload)
		},
	}
	if _, err := ctr.Bind(pkt.ProtoUDP, 11211, echo, 0); err != nil {
		t.Fatal(err)
	}
	eng.At(0, func() {
		h.InjectFromWire(0, EncapToServer(client, ctr, 11211, []byte("ping")))
	})
	if err := eng.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || string(replies[0]) != "ping" {
		t.Fatalf("replies = %q", replies)
	}
	if replyAt <= 0 {
		t.Error("reply timestamp missing")
	}
	if h.TxFrames != 1 {
		t.Errorf("TxFrames = %d", h.TxFrames)
	}
}

func TestHostNetworkPath(t *testing.T) {
	eng, h := newTestHost(t, prio.ModeVanilla)
	rec := &recorder{}
	if _, err := h.BindHost(pkt.ProtoUDP, 8080, rec, 0); err != nil {
		t.Fatal(err)
	}
	eng.At(0, func() {
		h.InjectFromWire(0, HostUDPToServer(5000, 8080, []byte("direct")))
	})
	if err := eng.Run(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(rec.msgs) != 1 || string(rec.msgs[0].Payload) != "direct" {
		t.Fatalf("msgs = %+v", rec.msgs)
	}
	// Single-stage: bridge and veth untouched.
	if h.Bridge.Dev.Processed != 0 {
		t.Errorf("bridge processed %d on host path", h.Bridge.Dev.Processed)
	}
}

func TestHostReplyPath(t *testing.T) {
	eng, h := newTestHost(t, prio.ModeVanilla)
	var got []byte
	h.AttachRemote(func(now sim.Time, frame []byte) {
		p, err := pkt.TransportPayload(frame)
		if err != nil {
			t.Errorf("host reply: %v", err)
			return
		}
		got = p
	})
	echo := socket.AppFunc{Fn: func(done sim.Time, m socket.Message) {
		h.SendHostUDP(done, m.From.SrcPort, 8080, []byte("pong"))
	}}
	if _, err := h.BindHost(pkt.ProtoUDP, 8080, echo, 0); err != nil {
		t.Fatal(err)
	}
	eng.At(0, func() { h.InjectFromWire(0, HostUDPToServer(5000, 8080, []byte("ping"))) })
	if err := eng.Run(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if string(got) != "pong" {
		t.Fatalf("reply = %q", got)
	}
}

func TestMultipleContainersIsolated(t *testing.T) {
	eng, h := newTestHost(t, prio.ModeVanilla)
	a := h.AddContainer("a")
	b := h.AddContainer("b")
	if a.IP == b.IP || a.MAC == b.MAC {
		t.Fatal("containers share addresses")
	}
	recA, recB := &recorder{}, &recorder{}
	if _, err := a.Bind(pkt.ProtoUDP, 7000, recA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Bind(pkt.ProtoUDP, 7000, recB, 0); err != nil {
		t.Fatal(err)
	}
	client := ClientContainer(0, 4000)
	eng.At(0, func() {
		h.InjectFromWire(0, EncapToServer(client, a, 7000, []byte("to-a")))
		h.InjectFromWire(0, EncapToServer(client, b, 7000, []byte("to-b")))
	})
	if err := eng.Run(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(recA.msgs) != 1 || string(recA.msgs[0].Payload) != "to-a" {
		t.Errorf("container a msgs = %+v", recA.msgs)
	}
	if len(recB.msgs) != 1 || string(recB.msgs[0].Payload) != "to-b" {
		t.Errorf("container b msgs = %+v", recB.msgs)
	}
}

func TestDefaultsApplied(t *testing.T) {
	eng := sim.NewEngine(1)
	h := NewHost(eng, Config{})
	if h.Mode != prio.ModeVanilla {
		t.Errorf("default mode = %v", h.Mode)
	}
	if h.Costs == nil {
		t.Error("costs not defaulted")
	}
	if h.DB.Mode() != prio.ModeVanilla {
		t.Error("db mode mismatch")
	}
}

func TestPrismSyncEndToEndBeatsVanillaOnBurst(t *testing.T) {
	// Sanity integration check of the paper's headline mechanism: with a
	// burst of low-priority traffic ahead of one high-priority packet,
	// PRISM-sync delivers the high-priority packet far sooner than vanilla.
	deliver := func(mode prio.Mode) sim.Time {
		eng, h := newTestHost(t, mode)
		ctrHi := h.AddContainer("hi")
		ctrLo := h.AddContainer("lo")
		recHi, recLo := &recorder{}, &recorder{}
		if _, err := ctrHi.Bind(pkt.ProtoUDP, 11211, recHi, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := ctrLo.Bind(pkt.ProtoUDP, 5001, recLo, 0); err != nil {
			t.Fatal(err)
		}
		h.DB.Add(prio.Rule{IP: ctrHi.IP, Port: 11211})
		cl := ClientContainer(0, 4000)
		eng.At(0, func() {
			for i := 0; i < 256; i++ {
				h.InjectFromWire(0, EncapToServer(cl, ctrLo, 5001, make([]byte, 64)))
			}
			h.InjectFromWire(0, EncapToServer(cl, ctrHi, 11211, make([]byte, 64)))
		})
		if err := eng.Run(50 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if len(recHi.msgs) != 1 {
			t.Fatalf("%v: high-prio msgs = %d", mode, len(recHi.msgs))
		}
		if len(recLo.msgs) != 256 {
			t.Fatalf("%v: low-prio msgs = %d", mode, len(recLo.msgs))
		}
		return recHi.msgs[0].Delivered
	}
	van := deliver(prio.ModeVanilla)
	syn := deliver(prio.ModeSync)
	// Behind a single cold burst the stage-1 FIFO dominates both modes
	// (the ring cannot be reordered, §IV-D); PRISM must still save the
	// bridge and veth queueing, i.e. at least a couple of batch times.
	// The paper's >50% steady-state cut is validated by the Fig. 9
	// experiment harness, not here.
	if syn >= van-50*sim.Microsecond {
		t.Errorf("sync delivery %v, want at least 50µs earlier than vanilla %v", syn, van)
	}
}

func TestRSSSteeringMultiQueue(t *testing.T) {
	eng := sim.NewEngine(7)
	h := NewHost(eng, Config{Mode: prio.ModeVanilla, RxQueues: 4, CStates: cpu.C1, AppCStates: cpu.C1})
	if len(h.NICs) != 4 || len(h.ProcCores) != 4 || len(h.Backlogs) != 4 {
		t.Fatalf("queues = %d/%d/%d", len(h.NICs), len(h.ProcCores), len(h.Backlogs))
	}
	ctr := h.AddContainer("srv")
	rec := &recorder{}
	if _, err := ctr.Bind(pkt.ProtoUDP, 9000, rec, 0); err != nil {
		t.Fatal(err)
	}
	// Many distinct flows (different client source ports => different
	// VXLAN entropy ports) must spread across queues; each single flow
	// must stay on one queue (no reordering within a flow).
	eng.At(0, func() {
		for flowIdx := 0; flowIdx < 16; flowIdx++ {
			cl := ClientContainer(flowIdx, uint16(40000+flowIdx))
			for i := 0; i < 8; i++ {
				h.InjectFromWire(0, EncapToServer(cl, ctr, 9000, []byte{byte(flowIdx), byte(i)}))
			}
		}
	})
	if err := eng.Run(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(rec.msgs) != 16*8 {
		t.Fatalf("delivered %d, want 128", len(rec.msgs))
	}
	used := 0
	for _, n := range h.NICs {
		if n.DMAd > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("flows used %d of 4 queues; RSS not spreading", used)
	}
	// Per-flow FIFO survives multi-queue (a flow maps to one queue).
	lastSeq := map[uint16]byte{}
	for _, m := range rec.msgs {
		flow := m.From.SrcPort
		seq := m.Payload[1]
		if last, ok := lastSeq[flow]; ok && seq <= last {
			t.Fatalf("flow %d reordered: %d after %d", flow, seq, last)
		}
		lastSeq[flow] = seq
	}
}

func TestMultiQueueScalesThroughput(t *testing.T) {
	// Aggregate delivery rate under overload must grow with RX queues when
	// the offered flows spread across them.
	run := func(queues int) float64 {
		eng := sim.NewEngine(7)
		h := NewHost(eng, Config{Mode: prio.ModeVanilla, RxQueues: queues, CStates: cpu.C1, AppCStates: cpu.C1})
		ctr := h.AddContainer("srv")
		delivered := 0
		app := socket.AppFunc{Fn: func(_ sim.Time, _ socket.Message) { delivered++ }}
		if _, err := ctr.Bind(pkt.ProtoUDP, 9000, app, 0); err != nil {
			t.Fatal(err)
		}
		// 8 flows, each overloading: total offered ~1.6x single-core cap
		// per flow set.
		for f := 0; f < 8; f++ {
			cl := ClientContainer(f, uint16(41000+f))
			f := f
			var emit func()
			emit = func() {
				now := eng.Now()
				for i := 0; i < 32; i++ {
					h.InjectFromWire(now, EncapToServer(cl, ctr, 9000, make([]byte, 64)))
				}
				_ = f
				eng.At(now+200*sim.Microsecond, emit) // 160 kpps per flow
			}
			eng.At(0, emit)
		}
		if err := eng.Run(100 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return float64(delivered) / 0.1
	}
	one := run(1)
	four := run(4)
	if four < one*2 {
		t.Errorf("4-queue rate %.0f pps not ≥ 2x single-queue %.0f pps", four, one)
	}
}
